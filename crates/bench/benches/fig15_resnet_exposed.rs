//! Fig 15 — ResNet-50 layer-wise compute and exposed communication time.
//!
//! Same run as Fig 14, now including per-layer compute and the *exposed*
//! communication latency: "the amount of communication time that is not
//! overlapped and the training algorithm is forced to stop" (§V-F).
//!
//! Checks:
//! * overlap works: total exposed time is far below total raw
//!   communication time;
//! * exposure concentrates in the *early* layers: their weight-gradient
//!   all-reduces are issued last during back-propagation but needed first
//!   in the next forward pass (§III-E).

use astra_bench::{calibrated_resnet50, check, emit, header, table_iv, torus_cfg, training};
use astra_core::output::Table;
use astra_des::Time;

fn main() {
    header(
        "Fig 15",
        "ResNet-50 layer-wise compute / comm / exposed comm (2x4x4, data parallel)",
    );
    let cfg = torus_cfg(2, 4, 4, 2, 2, 2, table_iv());
    let report = training(&cfg, calibrated_resnet50());

    let mut t = Table::new(
        ["layer", "compute", "total_comm", "exposed"]
            .map(String::from)
            .to_vec(),
    );
    for l in &report.layers {
        t.row(vec![
            l.name.clone(),
            l.compute.cycles().to_string(),
            l.total_comm().cycles().to_string(),
            l.exposed.cycles().to_string(),
        ]);
    }
    emit(&t);
    println!(
        "totals: compute {}  raw comm {}  exposed {}  (exposed ratio {:.1}%)",
        report.total_compute.cycles(),
        report.total_comm().cycles(),
        report.total_exposed.cycles(),
        report.exposed_ratio() * 100.0
    );

    let total_comm = report.total_comm();
    check(
        "most communication is overlapped: exposed < 50% of raw comm time",
        report.total_exposed.cycles() * 2 < total_comm.cycles(),
    );
    let n = report.layers.len();
    let first_quarter: Time = report.layers[..n / 4].iter().map(|l| l.exposed).sum();
    let last_quarter: Time = report.layers[3 * n / 4..].iter().map(|l| l.exposed).sum();
    check(
        "exposure concentrates in early layers (first quarter >> last quarter)",
        first_quarter > last_quarter,
    );
    check(
        "some layers are fully overlapped (zero exposed)",
        report.layers.iter().any(|l| l.exposed == Time::ZERO),
    );
}
