//! Ablation — Fig 1's framework-level design space: message fusion and
//! compute/communication overlap.
//!
//! The paper's design-space figure lists "fusion vs. splitting of
//! messages" and "overlap vs no overlap" as framework-level choices but
//! does not evaluate them; this ablation does, on the calibrated ResNet-50
//! (2x4x4 torus, data parallel):
//!
//! * gradient bucketing sweep (PyTorch-DDP style): tiny buckets pay
//!   per-collective overheads; the whole model in one bucket destroys the
//!   overlap window;
//! * overlap on/off: turning overlap off exposes every all-reduce fully.

use astra_bench::{calibrated_resnet50, check, emit, header, table_iv, torus_cfg};
use astra_core::output::Table;
use astra_core::Simulator;
use astra_workload::{transform, TrainingRunner};

fn main() {
    header(
        "Ablation",
        "gradient fusion (bucket sweep) + overlap on/off, ResNet-50 on 2x4x4",
    );
    let cfg = torus_cfg(2, 4, 4, 2, 2, 2, table_iv());
    let base = calibrated_resnet50();

    let mut t = Table::new(
        ["bucket", "collectives", "total_cycles", "exposed_cycles", "exposed_pct"]
            .map(String::from)
            .to_vec(),
    );
    let mut series = Vec::new();
    let buckets: [(&str, Option<u64>); 5] = [
        ("none (per-layer)", None),
        ("1MB", Some(1 << 20)),
        ("25MB", Some(25 << 20)),
        ("100MB", Some(100 << 20)),
        ("whole model", Some(u64::MAX)),
    ];
    for (label, bucket) in buckets {
        let wl = match bucket {
            None => base.clone(),
            Some(b) => transform::fuse_weight_gradients(&base, b),
        };
        let colls = wl.layers.iter().filter(|l| l.wg_comm.is_some()).count();
        let report = Simulator::new(cfg.clone())
            .expect("valid config")
            .run_training(wl)
            .expect("trains");
        t.row(vec![
            label.into(),
            colls.to_string(),
            report.total_time.cycles().to_string(),
            report.total_exposed.cycles().to_string(),
            format!("{:.1}", report.exposed_ratio() * 100.0),
        ]);
        series.push((report.total_time.cycles(), report.total_exposed.cycles()));
    }
    emit(&t);

    check(
        "fusing the whole model into one bucket is worse than per-layer collectives \
         (overlap window destroyed)",
        series[4].0 > series[0].0,
    );
    check(
        "moderate bucketing (25MB) is within 10% of the best configuration",
        {
            let best = series.iter().map(|s| s.0).min().unwrap() as f64;
            (series[2].0 as f64) < 1.1 * best
        },
    );

    // Overlap on/off.
    let sim = Simulator::new(cfg.clone()).expect("valid config");
    let with = sim.run_training(base.clone()).expect("trains");
    let without = {
        let ssim = Simulator::new(cfg).expect("valid config").system_sim().expect("builds");
        TrainingRunner::new(ssim, base, 2)
            .expect("valid workload")
            .without_overlap()
            .run()
            .expect("trains")
    };
    println!(
        "\noverlap ON : total {}  exposed {:.1}%",
        with.total_time.cycles(),
        with.exposed_ratio() * 100.0
    );
    println!(
        "overlap OFF: total {}  exposed {:.1}%",
        without.total_time.cycles(),
        without.exposed_ratio() * 100.0
    );
    check(
        "disabling overlap costs >25% end-to-end time",
        without.total_time.cycles() as f64 > 1.25 * with.total_time.cycles() as f64,
    );
    check(
        "without overlap, wall time == compute + exposed exactly",
        without.total_time == without.total_compute + without.total_exposed,
    );
}
