//! Criterion microbenchmarks of the simulation engine itself: event-queue
//! throughput, analytical-network message processing, and a full
//! ring-all-reduce system simulation. These track the simulator's own
//! performance (events/second), not any paper figure.

use astra_des::{EventQueue, Time};
use astra_network::{AnalyticalNet, Backend, Message, NetworkConfig};
use astra_system::{BackendKind, CollectiveRequest, SystemConfig, SystemSim};
use astra_topology::{Dim, LogicalTopology, NodeId, Torus3d};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    const N: u64 = 10_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..N {
                q.schedule_at(Time::from_cycles((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_analytical_net(c: &mut Criterion) {
    let mut g = c.benchmark_group("analytical_net");
    const MSGS: u64 = 1_000;
    g.throughput(Throughput::Elements(MSGS));
    g.bench_function("ring_messages_1k", |b| {
        let topo = LogicalTopology::torus(Torus3d::new(1, 8, 1, 1, 2, 1).unwrap());
        b.iter(|| {
            let mut net = AnalyticalNet::new(&topo, &NetworkConfig::default());
            let mut q = EventQueue::new();
            for i in 0..MSGS {
                let src = NodeId((i % 8) as usize);
                let route = topo.ring_route(Dim::Horizontal, 0, src, 1).unwrap();
                let dst = route.dst();
                net.send(&mut q, Message::new(i, src, dst, 4096, 0), route)
                    .unwrap();
            }
            let mut arrivals = Vec::new();
            while let Some((_, ev)) = q.pop() {
                net.handle(&mut q, ev, &mut arrivals);
            }
            black_box(arrivals.len())
        })
    });
    g.finish();
}

fn bench_system_all_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("system_sim");
    g.bench_function("all_reduce_4x4x4_1MB", |b| {
        b.iter(|| {
            let topo = LogicalTopology::torus(Torus3d::new(4, 4, 4, 2, 2, 2).unwrap());
            let mut sim = SystemSim::new(
                topo,
                SystemConfig::default(),
                &NetworkConfig::default(),
                BackendKind::Analytical,
            );
            sim.issue_collective(CollectiveRequest::all_reduce(1 << 20))
                .unwrap();
            sim.run_until_idle().unwrap();
            black_box(sim.events_processed())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_analytical_net,
    bench_system_all_reduce
);
criterion_main!(benches);
