//! Golden-report pins for the refactor seam.
//!
//! Each golden point replays one grid cell of a figure bench (fig09, fig10,
//! fig17) or the fault ablation through [`Simulator::run`] and compares the
//! *complete* serialized [`RunReport`] — phase spans, per-NPU stats, fault
//! counters and all — byte-for-byte against a JSON file captured before the
//! system-layer scheduler refactor. Any change to event ordering, endpoint
//! costing, retransmit backoff or report serialization trips these tests.
//!
//! Regenerate (only when a behavior change is *intended* and documented):
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p astra-bench --test golden_reports
//! ```

use astra_bench::calibrated_resnet50;
use astra_core::{
    Experiment, FaultKind, FaultPlan, LinkFault, LossSpec, SimConfig, Simulator,
};
use astra_des::Time;
use astra_system::CollectiveRequest;
use astra_topology::NodeId;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Runs the experiment and either regenerates or checks the golden file.
fn golden(name: &str, cfg: SimConfig, experiment: Experiment) {
    let sim = Simulator::new(cfg).expect("golden config is valid");
    let report = sim.run(experiment).expect("golden experiment completes");
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = golden_dir().join(format!("{name}.json"));
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        std::fs::write(&path, json).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        json,
        want,
        "report for `{name}` diverged from the pre-refactor golden \
         ({}); if the change is intentional, regenerate with GOLDEN_REGEN=1",
        path.display()
    );
}

/// Fig 9's base config: 1x8x1 torus, 4 horizontal bidirectional rings.
fn fig09_torus() -> SimConfig {
    SimConfig::torus(1, 8, 1)
        .local_rings(1)
        .horizontal_rings(4)
        .vertical_rings(1)
}

/// Fig 9's alltoall fabric grid cell: the base config with the topology
/// axis applied (1x8 alltoall through 7 switches).
fn fig09_alltoall() -> SimConfig {
    let mut cfg = fig09_torus();
    cfg.topology = SimConfig::alltoall(1, 8, 7).local_rings(1).topology;
    cfg
}

/// Fig 10's symmetric-link base with one of its four shapes applied.
fn fig10_shape(m: usize, n: usize, k: usize, lr: usize) -> SimConfig {
    let mut cfg = SimConfig::torus(1, 64, 1).symmetric_links();
    cfg.topology = SimConfig::torus(m, n, k)
        .local_rings(lr)
        .horizontal_rings(2)
        .vertical_rings(2)
        .topology;
    cfg
}

/// The fault ablation's two-pod fabric.
fn ablation_cfg() -> SimConfig {
    SimConfig::torus(1, 4, 1)
        .local_rings(1)
        .horizontal_rings(1)
        .vertical_rings(1)
        .pods(2, 1)
}

/// The fault ablation's heaviest cell: 10% drop rate, 4x-degraded rings.
fn ablation_heavy_plan() -> FaultPlan {
    let mut p = FaultPlan {
        seed: 2020,
        ..FaultPlan::default()
    };
    p.loss = Some(LossSpec {
        drop_rate: 0.1,
        timeout: Time::from_cycles(2_000),
        max_retries: 32,
    });
    for pod in 0..2usize {
        for i in 0..4usize {
            p.link_faults.push(LinkFault {
                from: NodeId(pod * 4 + i),
                to: NodeId(pod * 4 + (i + 1) % 4),
                kind: FaultKind::Degrade { factor: 0.25 },
                start: Time::ZERO,
                end: Time::from_cycles(u64::MAX / 2),
            });
        }
    }
    p
}

#[test]
fn fig09_allreduce_1mib_on_torus() {
    golden(
        "fig09_allreduce_1mib_torus",
        fig09_torus(),
        Experiment::all_reduce(1 << 20),
    );
}

#[test]
fn fig09_alltoall_64kib_on_alltoall() {
    golden(
        "fig09_alltoall_64kib_alltoall",
        fig09_alltoall(),
        Experiment::Collective(CollectiveRequest::all_to_all(64 << 10)),
    );
}

#[test]
fn fig10_allreduce_256kib_on_1x8x8() {
    golden(
        "fig10_allreduce_256kib_1x8x8",
        fig10_shape(1, 8, 8, 1),
        Experiment::all_reduce(256 << 10),
    );
}

#[test]
fn fig10_allreduce_4mib_on_4x4x4() {
    golden(
        "fig10_allreduce_4mib_4x4x4",
        fig10_shape(4, 4, 4, 4),
        Experiment::all_reduce(4 << 20),
    );
}

#[test]
fn fig17_resnet50_training_on_2x2x2() {
    golden(
        "fig17_resnet50_2x2x2",
        SimConfig::torus(2, 2, 2),
        Experiment::Training(calibrated_resnet50()),
    );
}

#[test]
fn ablation_faults_clean_pods() {
    golden(
        "ablation_faults_clean",
        ablation_cfg(),
        Experiment::all_reduce(1 << 20),
    );
}

#[test]
fn ablation_faults_heaviest_cell() {
    golden(
        "ablation_faults_heavy",
        ablation_cfg().with_faults(ablation_heavy_plan()),
        Experiment::all_reduce(1 << 20),
    );
}
