//! Shared experiment plumbing for the figure-regeneration benches.
//!
//! Every `benches/figNN_*.rs` target reproduces one figure of the paper's
//! evaluation (§V): it builds the figure's exact configuration from
//! Table IV, sweeps the figure's x-axis, prints the series as a table and
//! as CSV, and asserts the *qualitative* claims the paper makes about the
//! figure (who wins, where crossovers fall). Absolute cycle counts are not
//! expected to match the authors' Garnet build — shapes are.

use astra_core::output::Table;
use astra_core::{SimConfig, Simulator, TopologyConfig};
use astra_network::NetworkConfig;
use astra_sweep::{SweepEngine, SweepReport, SweepRun, SweepSpec};
use astra_system::{BackendKind, CollectiveRequest, SystemConfig};
use astra_workload::{TrainingReport, Workload};
use std::path::PathBuf;

/// The message-size sweep the bandwidth-test figures use (64 KiB – 64 MiB).
pub const SIZE_SWEEP: [u64; 6] = [
    64 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
    16 << 20,
    64 << 20,
];

/// Table IV network parameters (the crate defaults reproduce them).
pub fn table_iv() -> NetworkConfig {
    NetworkConfig::default()
}

/// Table IV with *symmetric* links: intra-package links get the
/// inter-package technology (Fig 10's "links with same BW" and Fig 11's
/// symmetric baseline).
pub fn symmetric_net() -> NetworkConfig {
    let mut net = NetworkConfig::default();
    net.local = net.package;
    net
}

/// A torus `SimConfig` with explicit ring counts.
pub fn torus_cfg(
    local: usize,
    horizontal: usize,
    vertical: usize,
    local_rings: usize,
    h_bi_rings: usize,
    v_bi_rings: usize,
    net: NetworkConfig,
) -> SimConfig {
    SimConfig {
        topology: TopologyConfig::Torus {
            local,
            horizontal,
            vertical,
            local_rings,
            horizontal_rings: h_bi_rings,
            vertical_rings: v_bi_rings,
        },
        system: SystemConfig::default(),
        network: net,
        backend: BackendKind::Analytical,
        passes: 2,
        overlay: None,
        faults: None,
    }
}

/// A hierarchical-alltoall `SimConfig`.
pub fn alltoall_cfg(
    local: usize,
    packages: usize,
    local_rings: usize,
    switches: usize,
    net: NetworkConfig,
) -> SimConfig {
    SimConfig {
        topology: TopologyConfig::AllToAll {
            local,
            packages,
            local_rings,
            switches,
        },
        system: SystemConfig::default(),
        network: net,
        backend: BackendKind::Analytical,
        passes: 2,
        overlay: None,
        faults: None,
    }
}

/// Completion time (cycles) of one collective on `cfg`.
///
/// # Panics
///
/// Panics if the experiment cannot run — a bench must fail loudly.
pub fn collective_cycles(cfg: &SimConfig, req: CollectiveRequest) -> u64 {
    Simulator::new(cfg.clone())
        .expect("valid figure config")
        .run_collective(req)
        .expect("collective completes")
        .duration
        .cycles()
}

/// Runs a training workload on `cfg` and returns the report.
///
/// # Panics
///
/// Panics if the experiment cannot run.
pub fn training(cfg: &SimConfig, workload: Workload) -> TrainingReport {
    Simulator::new(cfg.clone())
        .expect("valid figure config")
        .run_training(workload)
        .expect("training completes")
}

/// The workspace `target/` directory, where bench sweeps leave their
/// `BENCH_*.json` artifacts and result cache.
fn workspace_target() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target"))
}

/// The shared on-disk result cache every figure bench points at: grid
/// points two figures have in common are simulated once, and re-running a
/// figure is served entirely from cache.
pub fn sweep_cache_dir() -> PathBuf {
    workspace_target().join("sweep-cache")
}

/// Runs a figure's grid through the parallel sweep engine with the shared
/// result cache, writes the `BENCH_<name>.json` artifact into the
/// workspace `target/` directory, and returns the deterministic report.
///
/// # Panics
///
/// Panics if the spec is invalid or the artifact cannot be written — a
/// bench must fail loudly.
pub fn run_grid(spec: SweepSpec) -> SweepReport {
    run_grid_stats(spec).report
}

/// Like [`run_grid`], but also hands back the host-side
/// [`SweepStats`](astra_sweep::SweepStats) (wall clock, cache behavior,
/// events processed) for benches that report engine throughput. The stats
/// never influence the written artifact.
///
/// # Panics
///
/// As [`run_grid`].
pub fn run_grid_stats(spec: SweepSpec) -> SweepRun {
    let run = SweepEngine::new(spec)
        .cache_dir(sweep_cache_dir())
        .run()
        .expect("figure sweep runs");
    let path = run
        .report
        .write_bench_json(workspace_target())
        .expect("bench artifact written");
    println!(
        "[sweep] {}: {} points ({} simulated, {} cache hits, {} deduped) on {} workers -> {}",
        run.report.name,
        run.stats.points,
        run.stats.computed,
        run.stats.cache_hits,
        run.stats.deduped,
        run.stats.workers,
        path.display()
    );
    run
}

/// Prints a figure header.
pub fn header(fig: &str, what: &str) {
    println!("\n================================================================");
    println!("{fig}: {what}");
    println!("================================================================");
}

/// Prints a table both human-readably and as CSV.
pub fn emit(table: &Table) {
    println!("{}", table.render());
    println!("--- csv ---\n{}", table.to_csv());
}

/// Asserts a qualitative claim from the paper, printing the verdict.
///
/// # Panics
///
/// Panics when the claim does not hold, so `cargo bench` surfaces
/// regressions.
pub fn check(claim: &str, holds: bool) {
    println!("[{}] {claim}", if holds { "PASS" } else { "FAIL" });
    assert!(holds, "paper claim violated: {claim}");
}

/// ResNet-50 with the benchmark calibration applied.
///
/// Our closed-form weight-stationary systolic estimates badly underutilize
/// a 256×256 array on ResNet's small-K/small-N convolutions, whereas the
/// paper's compute model (SIGMA's analytical mode) maps such GEMMs
/// flexibly. We calibrate NPU compute power by a single global factor
/// (14×), chosen so the exposed-communication ratio of the paper's largest
/// configuration (2x8x8, Fig 17: 25.2%) is matched (we measure 25.0%). All
/// training figures (14–18) share this calibration; see EXPERIMENTS.md.
pub fn calibrated_resnet50() -> Workload {
    scale_compute_power(
        astra_workload::zoo::resnet50(&astra_compute::ComputeModel::tpu_like_256(), 32),
        14,
        1,
    )
}

/// Scales every compute delay of a workload by `den/num` — i.e. `num/den`×
/// compute *power* (Fig 18's knob).
pub fn scale_compute_power(mut wl: Workload, num: u64, den: u64) -> Workload {
    for l in &mut wl.layers {
        l.fwd_compute = l.fwd_compute.scale(den, num);
        l.ig_compute = l.ig_compute.scale(den, num);
        l.wg_compute = l.wg_compute.scale(den, num);
    }
    wl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_net_equalizes_classes() {
        let net = symmetric_net();
        assert_eq!(net.local.gbps, net.package.gbps);
        assert_eq!(net.local.latency, net.package.latency);
    }

    #[test]
    fn collective_cycles_smoke() {
        let cfg = torus_cfg(1, 4, 1, 1, 1, 1, table_iv());
        let t = collective_cycles(&cfg, CollectiveRequest::all_reduce(1 << 16));
        assert!(t > 0);
    }

    #[test]
    fn compute_power_scaling_halves_delays() {
        let wl = astra_workload::zoo::tiny_mlp();
        let fast = scale_compute_power(wl.clone(), 2, 1);
        assert_eq!(
            fast.layers[0].fwd_compute.cycles(),
            wl.layers[0].fwd_compute.cycles().div_ceil(2)
        );
    }

    #[test]
    #[should_panic(expected = "paper claim")]
    fn failed_check_panics() {
        check("water flows uphill", false);
    }
}
