//! Integration tests for the `astra-sim` CLI binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_astra-sim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn collective_command_reports_cycles() {
    let (ok, stdout, _) = run(&[
        "collective",
        "--topology",
        "2x2x2",
        "--op",
        "all-reduce",
        "--bytes",
        "65536",
    ]);
    assert!(ok);
    assert!(stdout.contains("cycles"), "{stdout}");
    assert!(stdout.contains("2x2x2 torus"));
}

#[test]
fn collective_json_output_parses() {
    let (ok, stdout, _) = run(&[
        "collective",
        "--topology",
        "1x8@7",
        "--op",
        "all-to-all",
        "--bytes",
        "65536",
        "--json",
    ]);
    assert!(ok);
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert!(v["duration"].as_u64().unwrap() > 0);
}

#[test]
fn enhanced_flag_changes_result() {
    let base = run(&[
        "collective", "--topology", "4x4x4", "--op", "all-reduce", "--bytes", "4194304",
    ]);
    let enh = run(&[
        "collective", "--topology", "4x4x4", "--op", "all-reduce", "--bytes", "4194304",
        "--enhanced",
    ]);
    assert!(base.0 && enh.0);
    assert_ne!(base.1, enh.1, "enhanced algorithm must change the outcome");
}

#[test]
fn train_model_command() {
    let (ok, stdout, _) = run(&[
        "train", "--topology", "2x2x1", "--model", "tiny_mlp", "--passes", "1",
    ]);
    assert!(ok);
    assert!(stdout.contains("exposed ratio"), "{stdout}");
}

#[test]
fn train_workload_file_command() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/workloads/custom_mlp.txt");
    let (ok, stdout, _) = run(&["train", "--topology", "2x2x2", "--workload", path]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("fc4"));
}

#[test]
fn export_roundtrips_through_train() {
    let dir = std::env::temp_dir().join("astra_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("dlrm.txt");
    let (ok, _, stderr) = run(&[
        "export",
        "--model",
        "dlrm",
        "--out",
        file.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let (ok, stdout, stderr) = run(&[
        "train",
        "--topology",
        "1x4@2",
        "--workload",
        file.to_str().unwrap(),
        "--passes",
        "1",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("embeddings"));
}

#[test]
fn sweep_command_writes_bench_json_and_hits_cache() {
    let dir = std::env::temp_dir().join(format!("astra_cli_sweep_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("cache");
    let sweep_args = [
        "sweep",
        "--topology",
        "1x4x1,1x4@3",
        "--op",
        "all-reduce,all-to-all",
        "--sizes",
        "65536,1048576",
        "--name",
        "cli-test",
        "--workers",
        "2",
        "--cache-dir",
        cache.to_str().unwrap(),
        "--out-dir",
        dir.to_str().unwrap(),
    ];
    let (ok, _, stderr) = run(&sweep_args);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("8 points (8 simulated, 0 cache hits"), "{stderr}");

    let artifact = dir.join("BENCH_cli-test.json");
    let first = std::fs::read_to_string(&artifact).expect("artifact written");
    let v: serde_json::Value = serde_json::from_str(&first).expect("valid JSON");
    assert_eq!(v["schema"].as_u64(), Some(1));
    assert_eq!(v["points"].as_array().unwrap().len(), 8);

    // Warm re-run: all points served from cache, byte-identical artifact.
    let (ok, _, stderr) = run(&sweep_args);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("8 cache hits"), "{stderr}");
    let second = std::fs::read_to_string(&artifact).unwrap();
    assert_eq!(first, second, "cached re-run must not change a byte");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sweep_spec_file_runs() {
    let dir = std::env::temp_dir().join(format!("astra_cli_specfile_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // Author a spec through the library API, write it, run it via --spec.
    use astra_sim::sweep::{Axis, SweepSpec};
    use astra_sim::{Experiment, SimConfig};
    let spec = SweepSpec::new(
        "from-file",
        SimConfig::torus(1, 4, 1),
        Experiment::all_reduce(1 << 10),
    )
    .axis(Axis::MessageSizes(vec![1 << 10, 1 << 16]));
    let spec_path = dir.join("spec.json");
    std::fs::write(&spec_path, serde_json::to_string(&spec).unwrap()).unwrap();
    let (ok, stdout, stderr) = run(&[
        "sweep",
        "--spec",
        spec_path.to_str().unwrap(),
        "--out-dir",
        dir.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok, "{stderr}");
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert_eq!(v["name"].as_str(), Some("from-file"));
    assert!(dir.join("BENCH_from-file.json").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_arguments_fail_gracefully() {
    let (ok, _, stderr) = run(&["collective", "--topology", "banana", "--bytes", "1"]);
    assert!(!ok);
    assert!(stderr.contains("error"));
    let (ok, _, _) = run(&["frobnicate"]);
    assert!(!ok);
    let (ok, _, stderr) = run(&["train", "--topology", "2x2x2"]);
    assert!(!ok);
    assert!(stderr.contains("--model"));
}
