//! Integration tests for the `astra-sim` CLI binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_astra-sim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn collective_command_reports_cycles() {
    let (ok, stdout, _) = run(&[
        "collective",
        "--topology",
        "2x2x2",
        "--op",
        "all-reduce",
        "--bytes",
        "65536",
    ]);
    assert!(ok);
    assert!(stdout.contains("cycles"), "{stdout}");
    assert!(stdout.contains("2x2x2 torus"));
}

#[test]
fn collective_json_output_parses() {
    let (ok, stdout, _) = run(&[
        "collective",
        "--topology",
        "1x8@7",
        "--op",
        "all-to-all",
        "--bytes",
        "65536",
        "--json",
    ]);
    assert!(ok);
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert!(v["duration"].as_u64().unwrap() > 0);
}

#[test]
fn enhanced_flag_changes_result() {
    let base = run(&[
        "collective", "--topology", "4x4x4", "--op", "all-reduce", "--bytes", "4194304",
    ]);
    let enh = run(&[
        "collective", "--topology", "4x4x4", "--op", "all-reduce", "--bytes", "4194304",
        "--enhanced",
    ]);
    assert!(base.0 && enh.0);
    assert_ne!(base.1, enh.1, "enhanced algorithm must change the outcome");
}

#[test]
fn train_model_command() {
    let (ok, stdout, _) = run(&[
        "train", "--topology", "2x2x1", "--model", "tiny_mlp", "--passes", "1",
    ]);
    assert!(ok);
    assert!(stdout.contains("exposed ratio"), "{stdout}");
}

#[test]
fn train_workload_file_command() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/workloads/custom_mlp.txt");
    let (ok, stdout, _) = run(&["train", "--topology", "2x2x2", "--workload", path]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("fc4"));
}

#[test]
fn export_roundtrips_through_train() {
    let dir = std::env::temp_dir().join("astra_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("dlrm.txt");
    let (ok, _, stderr) = run(&[
        "export",
        "--model",
        "dlrm",
        "--out",
        file.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let (ok, stdout, stderr) = run(&[
        "train",
        "--topology",
        "1x4@2",
        "--workload",
        file.to_str().unwrap(),
        "--passes",
        "1",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("embeddings"));
}

#[test]
fn bad_arguments_fail_gracefully() {
    let (ok, _, stderr) = run(&["collective", "--topology", "banana", "--bytes", "1"]);
    assert!(!ok);
    assert!(stderr.contains("error"));
    let (ok, _, _) = run(&["frobnicate"]);
    assert!(!ok);
    let (ok, _, stderr) = run(&["train", "--topology", "2x2x2"]);
    assert!(!ok);
    assert!(stderr.contains("--model"));
}
