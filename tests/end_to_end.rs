//! End-to-end integration tests: full training simulations spanning every
//! crate in the stack.

use astra_sim::compute::ComputeModel;
use astra_sim::des::Time;
use astra_sim::system::{CollectiveRequest, SchedulingPolicy};
use astra_sim::workload::{parser, zoo};
use astra_sim::{SimConfig, Simulator, TopologyConfig};

#[test]
fn resnet50_trains_on_paper_system() {
    // The paper's §V-F system: 2x4x4 torus, data parallel, 2 passes.
    let sim = Simulator::new(SimConfig::torus(2, 4, 4)).unwrap();
    let report = sim
        .run_training(zoo::resnet50(&ComputeModel::tpu_like_256(), 32))
        .unwrap();
    assert_eq!(report.layers.len(), 50);
    assert_eq!(report.passes, 2);
    assert!(report.total_time > report.total_compute);
    // Every layer all-reduced its gradients twice.
    assert!(report.layers.iter().all(|l| l.wg_comm > Time::ZERO));
}

#[test]
fn transformer_trains_hybrid_parallel() {
    let sim = Simulator::new(SimConfig::torus(2, 2, 2)).unwrap();
    let report = sim
        .run_training(zoo::transformer(&ComputeModel::tpu_like_256(), 32, 64))
        .unwrap();
    assert_eq!(report.layers.len(), 7);
    // Hybrid parallelism: blocking activation collectives expose time.
    assert!(report.total_exposed > Time::ZERO);
}

#[test]
fn dlrm_exercises_all_to_all() {
    let sim = Simulator::new(SimConfig::alltoall(2, 8, 4)).unwrap();
    let report = sim
        .run_training(zoo::dlrm(&ComputeModel::tpu_like_256(), 32))
        .unwrap();
    let emb = report
        .layers
        .iter()
        .find(|l| l.name == "embeddings")
        .unwrap();
    assert!(emb.fwd_comm > Time::ZERO, "embedding all-to-all ran");
    assert!(emb.ig_comm > Time::ZERO);
}

#[test]
fn training_is_deterministic_across_runs() {
    let run = || {
        Simulator::new(SimConfig::torus(2, 2, 2))
            .unwrap()
            .run_training(zoo::tiny_hybrid())
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(a.total_exposed, b.total_exposed);
    for (x, y) in a.layers.iter().zip(&b.layers) {
        assert_eq!(x.wg_comm, y.wg_comm);
        assert_eq!(x.exposed, y.exposed);
    }
}

#[test]
fn lifo_prioritizes_late_layers_under_contention() {
    // Make compute negligible so weight-gradient collectives pile up; LIFO
    // should then finish the *first* layer's collective (issued last)
    // sooner, reducing its exposure relative to FIFO.
    let mut wl = zoo::tiny_mlp();
    for l in &mut wl.layers {
        l.fwd_compute = Time::from_cycles(10);
        l.ig_compute = Time::from_cycles(10);
        l.wg_compute = Time::from_cycles(10);
        if let Some(c) = &mut l.wg_comm {
            c.bytes = 8 << 20;
        }
    }
    let run = |policy| {
        let mut cfg = SimConfig::torus(1, 8, 1);
        cfg.system.scheduling = policy;
        Simulator::new(cfg).unwrap().run_training(wl.clone()).unwrap()
    };
    let lifo = run(SchedulingPolicy::Lifo);
    let fifo = run(SchedulingPolicy::Fifo);
    assert!(
        lifo.layers[0].exposed <= fifo.layers[0].exposed,
        "LIFO should not increase first-layer exposure: {} vs {}",
        lifo.layers[0].exposed,
        fifo.layers[0].exposed
    );
}

#[test]
fn workload_file_runs_end_to_end() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/workloads/custom_mlp.txt"
    ))
    .unwrap();
    let wl = parser::parse("custom_mlp", &text).unwrap();
    let report = Simulator::new(SimConfig::torus(2, 2, 2))
        .unwrap()
        .run_training(wl)
        .unwrap();
    assert_eq!(report.layers.len(), 4);
    assert!(report.total_time > Time::ZERO);
}

#[test]
fn hybrid_workload_file_runs() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/workloads/hybrid_transformer_small.txt"
    ))
    .unwrap();
    let wl = parser::parse("hybrid_small", &text).unwrap();
    let report = Simulator::new(SimConfig::torus(2, 2, 2))
        .unwrap()
        .run_training(wl)
        .unwrap();
    assert!(report.layers.iter().any(|l| l.fwd_comm > Time::ZERO));
}

#[test]
fn more_passes_take_proportionally_longer() {
    let mut cfg = SimConfig::torus(2, 2, 1);
    cfg.passes = 1;
    let one = Simulator::new(cfg.clone())
        .unwrap()
        .run_training(zoo::tiny_mlp())
        .unwrap();
    cfg.passes = 4;
    let four = Simulator::new(cfg)
        .unwrap()
        .run_training(zoo::tiny_mlp())
        .unwrap();
    let ratio = four.total_time.cycles() as f64 / one.total_time.cycles() as f64;
    assert!(
        (3.0..5.0).contains(&ratio),
        "4 passes should take ~4x one pass, got {ratio}"
    );
}

#[test]
fn bandwidth_test_duration_scales_with_size() {
    let sim = Simulator::new(SimConfig::torus(2, 4, 4)).unwrap();
    let mut last = 0;
    for bytes in [1 << 16, 1 << 20, 1 << 24] {
        let t = sim
            .run_collective(CollectiveRequest::all_reduce(bytes))
            .unwrap()
            .duration
            .cycles();
        assert!(t > last, "bigger collectives must take longer");
        last = t;
    }
}

#[test]
fn every_collective_op_runs_on_every_fabric() {
    use astra_sim::collectives::CollectiveOp;
    let fabrics = [
        SimConfig::torus(2, 2, 2),
        SimConfig::torus(1, 8, 1),
        SimConfig::alltoall(2, 4, 2),
        SimConfig::alltoall(1, 8, 7),
    ];
    for cfg in fabrics {
        let sim = Simulator::new(cfg.clone()).unwrap();
        for op in [
            CollectiveOp::ReduceScatter,
            CollectiveOp::AllGather,
            CollectiveOp::AllReduce,
            CollectiveOp::AllToAll,
        ] {
            let req = CollectiveRequest {
                op,
                bytes: 1 << 18,
                dims: None,
                algorithm: None,
                local_update_per_kb: None,
            };
            let out = sim.run_collective(req).unwrap_or_else(|e| {
                panic!("{op:?} failed on {:?}: {e}", cfg.topology)
            });
            assert!(out.duration > Time::ZERO);
        }
    }
}

#[test]
fn topology_config_rejects_nonsense() {
    let bad = SimConfig {
        topology: TopologyConfig::Torus {
            local: 0,
            horizontal: 8,
            vertical: 1,
            local_rings: 1,
            horizontal_rings: 1,
            vertical_rings: 1,
        },
        ..SimConfig::torus(1, 8, 1)
    };
    assert!(Simulator::new(bad).is_err());
}

#[test]
fn overlay_config_via_facade() {
    use astra_sim::OverlayConfig;
    // Logical 1x4x4 on a physical 1x16x1 ring, with a rotated permutation.
    let thin_ring = SimConfig::torus(1, 16, 1)
        .local_rings(1)
        .horizontal_rings(2)
        .vertical_rings(1)
        .topology;
    let cfg = SimConfig::torus(1, 4, 4).with_overlay(OverlayConfig {
        physical: thin_ring.clone(),
        permutation: Some((0..16).map(|i| (i + 5) % 16).collect()),
    });
    let overlaid = Simulator::new(cfg)
        .unwrap()
        .run_collective(CollectiveRequest::all_reduce(1 << 20))
        .unwrap();
    let native = Simulator::new(SimConfig::torus(1, 4, 4))
        .unwrap()
        .run_collective(CollectiveRequest::all_reduce(1 << 20))
        .unwrap();
    assert!(
        overlaid.duration > native.duration,
        "thin physical fabric must be slower: {} vs {}",
        overlaid.duration,
        native.duration
    );
    // A rotation is an isomorphism of the ring: same result as identity.
    let ident_cfg = SimConfig::torus(1, 4, 4).with_overlay(OverlayConfig {
        physical: thin_ring,
        permutation: None,
    });
    let ident = Simulator::new(ident_cfg)
        .unwrap()
        .run_collective(CollectiveRequest::all_reduce(1 << 20))
        .unwrap();
    assert_eq!(overlaid.duration, ident.duration);
}

#[test]
fn bad_overlay_permutation_rejected() {
    let cfg = SimConfig::torus(1, 4, 1).with_overlay(astra_sim::OverlayConfig {
        physical: SimConfig::torus(1, 4, 1)
            .local_rings(1)
            .horizontal_rings(1)
            .vertical_rings(1)
            .topology,
        permutation: Some(vec![0, 0, 1, 2]), // not a permutation
    });
    let sim = Simulator::new(cfg).unwrap();
    assert!(sim
        .run_collective(CollectiveRequest::all_reduce(1 << 10))
        .is_err());
}

#[test]
fn garnet_backend_runs_on_pod_fabric() {
    use astra_sim::system::BackendKind;
    let mut cfg = SimConfig::torus(2, 1, 1)
        .local_rings(1)
        .horizontal_rings(1)
        .vertical_rings(1)
        .pods(2, 1)
        .with_backend(BackendKind::Garnet);
    cfg.system.set_splits = 2;
    let out = Simulator::new(cfg)
        .unwrap()
        .run_collective(CollectiveRequest::all_reduce(8 << 10))
        .unwrap();
    assert!(out.duration > astra_sim::des::Time::ZERO);
    assert!(out.network.scale_out_link_bytes > 0);
}
