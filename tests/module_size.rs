//! Repo hygiene: no source module may regrow into a monolith.
//!
//! The system layer's `sim.rs` once reached ~1800 lines before being
//! staged into `scheduler`/`endpoint`/`transport`/`routing` modules; this
//! guard keeps every non-vendored `.rs` file — sources, tests, and benches
//! alike — under 1000 lines so the next oversized module is caught at
//! review time, not after it calcifies. CI runs the same check as a shell
//! step; this test enforces it locally.

use std::path::{Path, PathBuf};

const MAX_LINES: usize = 1000;

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = std::fs::read_dir(dir).unwrap_or_else(|e| {
        panic!("cannot list {}: {e}", dir.display());
    });
    for entry in entries {
        let path = entry.expect("readable directory entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // Vendored crates and build output are not ours to size-police.
            if name == "vendor" || name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_non_vendored_module_exceeds_the_line_limit() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    assert!(
        files.len() > 50,
        "guard walked only {} files — is it looking at the right root?",
        files.len()
    );

    let mut oversized = Vec::new();
    for path in files {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let lines = text.lines().count();
        if lines > MAX_LINES {
            oversized.push(format!(
                "  {} ({lines} lines)",
                path.strip_prefix(&root).unwrap_or(&path).display()
            ));
        }
    }
    assert!(
        oversized.is_empty(),
        "modules over {MAX_LINES} lines — split them before they calcify:\n{}",
        oversized.join("\n")
    );
}
