//! Cross-validation of the two network backends.
//!
//! The flit-level garnet backend and the link-level analytical backend
//! model the same physical fabric at different granularities. On small
//! configurations their predictions must agree in ordering and be within a
//! modest constant factor (the flit model pays per-flit serialization
//! rounding and credit round-trips that the analytical model folds into
//! the efficiency parameter).

use astra_sim::des::Time;
use astra_sim::network::NetworkConfig;
use astra_sim::system::{BackendKind, CollectiveRequest, SystemConfig, SystemSim};
use astra_sim::topology::{LogicalTopology, Torus3d};

fn run(backend: BackendKind, bytes: u64) -> Time {
    let topo = LogicalTopology::torus(Torus3d::new(1, 4, 1, 1, 1, 1).unwrap());
    let mut sim = SystemSim::new(
        topo,
        SystemConfig {
            set_splits: 4,
            ..SystemConfig::default()
        },
        &NetworkConfig::default(),
        backend,
    );
    let id = sim.issue_collective(CollectiveRequest::all_reduce(bytes)).unwrap();
    sim.run_until_idle().unwrap();
    sim.report(id).unwrap().finished_at
}

#[test]
fn backends_agree_within_2x_on_small_ring() {
    for bytes in [4 << 10, 64 << 10, 256 << 10] {
        let analytical = run(BackendKind::Analytical, bytes).cycles() as f64;
        let garnet = run(BackendKind::Garnet, bytes).cycles() as f64;
        let ratio = garnet / analytical;
        assert!(
            (0.5..2.0).contains(&ratio),
            "backends disagree at {bytes} bytes: analytical {analytical}, garnet {garnet}"
        );
    }
}

#[test]
fn both_backends_preserve_size_ordering() {
    for backend in [BackendKind::Analytical, BackendKind::Garnet] {
        let small = run(backend, 8 << 10);
        let large = run(backend, 128 << 10);
        assert!(large > small, "{backend:?} must order by size");
    }
}

#[test]
fn garnet_is_deterministic() {
    let a = run(BackendKind::Garnet, 32 << 10);
    let b = run(BackendKind::Garnet, 32 << 10);
    assert_eq!(a, b);
}

#[test]
fn garnet_respects_bandwidth_asymmetry() {
    // A 2-NPU local ring vs a 2-NPU package ring: the 8x faster local links
    // must finish the same collective sooner under the flit model.
    let run_dim = |local: bool| {
        let topo = if local {
            LogicalTopology::torus(Torus3d::new(2, 1, 1, 1, 1, 1).unwrap())
        } else {
            LogicalTopology::torus(Torus3d::new(1, 2, 1, 1, 1, 1).unwrap())
        };
        let mut sim = SystemSim::new(
            topo,
            SystemConfig {
                set_splits: 2,
                ..SystemConfig::default()
            },
            &NetworkConfig::default(),
            BackendKind::Garnet,
        );
        let id = sim
            .issue_collective(CollectiveRequest::all_reduce(64 << 10))
            .unwrap();
        sim.run_until_idle().unwrap();
        sim.report(id).unwrap().finished_at
    };
    let local = run_dim(true);
    let package = run_dim(false);
    assert!(
        local < package,
        "200 GB/s local ring ({local}) must beat 25 GB/s package ring ({package})"
    );
}
