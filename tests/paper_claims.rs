//! Fast versions of the paper's headline qualitative claims — smoke-level
//! guards so a plain `cargo test` (not just `cargo bench`) catches
//! regressions in any reproduced result. The full sweeps live in
//! `crates/bench/benches/`.

use astra_sim::collectives::{plan, traffic, Algorithm, CollectiveOp, Ratio};
use astra_sim::system::CollectiveRequest;
use astra_sim::topology::{LogicalTopology, Torus3d};
use astra_sim::{SimConfig, Simulator};

fn cycles(cfg: &SimConfig, req: CollectiveRequest) -> u64 {
    Simulator::new(cfg.clone())
        .unwrap()
        .run_collective(req)
        .unwrap()
        .duration
        .cycles()
}

fn symmetric(mut cfg: SimConfig) -> SimConfig {
    cfg.network.local = cfg.network.package;
    cfg
}

/// §V-B quotes exact per-node traffic factors for the Fig 10 shapes.
#[test]
fn paper_traffic_factors_are_exact() {
    let factor = |m, n, k| {
        let topo = LogicalTopology::torus(Torus3d::new(m, n, k, 2, 2, 2).unwrap());
        traffic::send_factor(
            &plan(&topo, CollectiveOp::AllReduce, Algorithm::Baseline, None).unwrap(),
        )
    };
    assert_eq!(factor(1, 64, 1), Ratio::new(126, 64));
    assert_eq!(factor(1, 8, 8), Ratio::new(28, 8));
    assert_eq!(factor(2, 8, 4), Ratio::new(34, 8));
    assert_eq!(factor(4, 4, 4), Ratio::new(36, 8));
}

/// §V-C: the enhanced algorithm cuts inter-package volume by the local
/// dimension's size (4x for 4 NAMs per NAP).
#[test]
fn enhanced_cuts_inter_package_traffic_4x() {
    let topo = LogicalTopology::torus(Torus3d::new(4, 4, 4, 2, 2, 2).unwrap());
    let base = plan(&topo, CollectiveOp::AllReduce, Algorithm::Baseline, None).unwrap();
    let enh = plan(&topo, CollectiveOp::AllReduce, Algorithm::Enhanced, None).unwrap();
    let set = 1 << 20;
    let (_, base_pkg) = traffic::link_bytes_per_node(&base, set);
    let (_, enh_pkg) = traffic::link_bytes_per_node(&enh, set);
    assert_eq!(base_pkg, 4 * enh_pkg);
}

/// Fig 9: alltoall wins the all-to-all collective; torus wins large
/// all-reduce.
#[test]
fn fig9_smoke() {
    let torus = SimConfig::torus(1, 8, 1)
        .local_rings(1)
        .horizontal_rings(4)
        .vertical_rings(1);
    let a2a = SimConfig::alltoall(1, 8, 7);
    let big = 16 << 20;
    assert!(
        cycles(&a2a, CollectiveRequest::all_to_all(big))
            < cycles(&torus, CollectiveRequest::all_to_all(big))
    );
    assert!(
        cycles(&torus, CollectiveRequest::all_reduce(big))
            < cycles(&a2a, CollectiveRequest::all_reduce(big))
    );
}

/// Fig 10: 2D crushes 1D in the latency-bound regime.
#[test]
fn fig10_smoke() {
    let shape = |m, n, k, lr, hr, vr| {
        SimConfig::torus(m, n, k)
            .local_rings(lr)
            .horizontal_rings(hr)
            .vertical_rings(vr)
            .symmetric_links()
    };
    let small = 64 << 10;
    let d1 = cycles(&shape(1, 64, 1, 1, 2, 1), CollectiveRequest::all_reduce(small));
    let d2 = cycles(&shape(1, 8, 8, 1, 2, 2), CollectiveRequest::all_reduce(small));
    let d3 = cycles(&shape(4, 4, 4, 4, 2, 2), CollectiveRequest::all_reduce(small));
    assert!(d2 < d1, "2D ({d2}) must beat 1D ({d1}) at small sizes");
    assert!(d3 < d2, "3D ({d3}) must beat 2D ({d2}) at small sizes");
}

/// Fig 11: asymmetry helps; the 4-phase algorithm helps more.
#[test]
fn fig11_smoke() {
    let asym = SimConfig::torus(4, 4, 4);
    let sym = symmetric(asym.clone());
    let mut enh = asym.clone();
    enh.system.algorithm = Algorithm::Enhanced;
    let big = 16 << 20;
    let t_sym = cycles(&sym, CollectiveRequest::all_reduce(big));
    let t_asym = cycles(&asym, CollectiveRequest::all_reduce(big));
    let t_enh = cycles(&enh, CollectiveRequest::all_reduce(big));
    assert!(t_asym < t_sym);
    assert!(t_enh < t_asym);
}

/// Figs 17/18 trend: more NPUs or faster NPUs expose more communication.
#[test]
fn exposure_trends_smoke() {
    use astra_sim::workload::zoo;
    let run = |cfg: &SimConfig, speedup: u64| {
        let mut wl = zoo::resnet50(&astra_sim::compute::ComputeModel::tpu_like_256(), 32);
        for l in &mut wl.layers {
            l.fwd_compute = l.fwd_compute.scale(1, speedup);
            l.ig_compute = l.ig_compute.scale(1, speedup);
            l.wg_compute = l.wg_compute.scale(1, speedup);
        }
        Simulator::new(cfg.clone())
            .unwrap()
            .run_training(wl)
            .unwrap()
            .exposed_ratio()
    };
    let small_sys = SimConfig::torus(2, 2, 2);
    let big_sys = SimConfig::torus(2, 8, 4);
    // Fig 17 direction: bigger system, more exposure (at a compute speed
    // where communication is near the surface).
    assert!(run(&big_sys, 20) >= run(&small_sys, 20));
    // Fig 18 direction: faster compute, more exposure.
    assert!(run(&big_sys, 24) >= run(&big_sys, 12));
}
