//! End-to-end tests for the scale-out extension (§VII future work):
//! pods of scale-up torus joined by Ethernet-class switches.

use astra_sim::collectives::{plan, semantics, traffic, Algorithm, CollectiveOp};
use astra_sim::des::Time;
use astra_sim::system::CollectiveRequest;
use astra_sim::topology::{Dim, LogicalTopology, PodFabric, Torus3d};
use astra_sim::workload::zoo;
use astra_sim::{SimConfig, Simulator};

fn pods_cfg(pods: usize, switches: usize) -> SimConfig {
    SimConfig::torus(2, 2, 2)
        .horizontal_rings(1)
        .vertical_rings(1)
        .pods(pods, switches)
}

#[test]
fn all_collectives_run_across_pods() {
    let sim = Simulator::new(pods_cfg(4, 2)).unwrap();
    for op in [
        CollectiveOp::ReduceScatter,
        CollectiveOp::AllGather,
        CollectiveOp::AllReduce,
        CollectiveOp::AllToAll,
    ] {
        let out = sim
            .run_collective(CollectiveRequest {
                op,
                bytes: 1 << 18,
                dims: None,
                algorithm: None,
                local_update_per_kb: None,
            })
            .unwrap_or_else(|e| panic!("{op:?} failed on pod fabric: {e}"));
        assert!(out.duration > Time::ZERO);
        assert!(
            out.network.scale_out_link_bytes > 0,
            "{op:?} must cross the scale-out network"
        );
    }
}

#[test]
fn scale_out_plans_are_semantically_correct() {
    let topo = LogicalTopology::pods(PodFabric::new(
        Torus3d::new(2, 2, 2, 1, 1, 1).unwrap(),
        4,
        2,
    ).unwrap());
    for op in [
        CollectiveOp::ReduceScatter,
        CollectiveOp::AllGather,
        CollectiveOp::AllReduce,
        CollectiveOp::AllToAll,
    ] {
        for algo in [Algorithm::Baseline, Algorithm::Enhanced] {
            let p = plan(&topo, op, algo, None).unwrap();
            semantics::verify_plan(&topo, &p).unwrap_or_else(|e| panic!("{p}: {e}"));
        }
    }
}

#[test]
fn enhanced_cuts_scale_out_traffic_by_local_size() {
    // The enhanced algorithm's shard bracketing extends to the scale-out
    // dimension: 2 NAMs per package -> 2x less Ethernet traffic.
    let topo = LogicalTopology::pods(PodFabric::new(
        Torus3d::new(2, 2, 2, 2, 1, 1).unwrap(),
        4,
        2,
    ).unwrap());
    let base = plan(&topo, CollectiveOp::AllReduce, Algorithm::Baseline, None).unwrap();
    let enh = plan(&topo, CollectiveOp::AllReduce, Algorithm::Enhanced, None).unwrap();
    let set = 1 << 20;
    let base_so = traffic::link_bytes_per_node_all(&base, set)[2];
    let enh_so = traffic::link_bytes_per_node_all(&enh, set)[2];
    assert_eq!(base_so, 2 * enh_so);
}

#[test]
fn slower_scale_out_links_dominate_completion() {
    // Same fabric; strangle the Ethernet links 4x: the all-reduce must
    // slow down, and by roughly the bandwidth ratio at large sizes.
    let fast = Simulator::new(pods_cfg(4, 2)).unwrap();
    let mut slow_cfg = pods_cfg(4, 2);
    slow_cfg.network.scale_out.gbps /= 4.0;
    let slow = Simulator::new(slow_cfg).unwrap();
    let req = || CollectiveRequest::all_reduce(16 << 20);
    let t_fast = fast.run_collective(req()).unwrap().duration.cycles();
    let t_slow = slow.run_collective(req()).unwrap().duration.cycles();
    let ratio = t_slow as f64 / t_fast as f64;
    assert!(
        (2.0..5.0).contains(&ratio),
        "4x slower Ethernet should dominate at 16MB: ratio {ratio}"
    );
}

#[test]
fn training_runs_across_pods() {
    let sim = Simulator::new(pods_cfg(2, 1)).unwrap();
    let report = sim.run_training(zoo::tiny_mlp()).unwrap();
    assert_eq!(report.layers.len(), 3);
    assert!(report.total_time > Time::ZERO);
}

#[test]
fn scale_out_dim_appears_last_in_plans() {
    let topo = LogicalTopology::pods(PodFabric::new(
        Torus3d::new(2, 2, 1, 1, 1, 1).unwrap(),
        3,
        1,
    ).unwrap());
    let p = plan(&topo, CollectiveOp::AllReduce, Algorithm::Baseline, None).unwrap();
    assert_eq!(p.phases().last().unwrap().dim, Dim::ScaleOut);
    assert_eq!(p.phases().last().unwrap().size, 3);
}

#[test]
fn single_pod_behaves_like_plain_torus() {
    let pods = Simulator::new(pods_cfg(1, 0)).unwrap();
    let plain = Simulator::new(
        SimConfig::torus(2, 2, 2)
            .horizontal_rings(1)
            .vertical_rings(1),
    )
    .unwrap();
    let req = || CollectiveRequest::all_reduce(1 << 20);
    assert_eq!(
        pods.run_collective(req()).unwrap().duration,
        plain.run_collective(req()).unwrap().duration
    );
}
